// Command ipuserve serves SHL models for inference over an HTTP JSON API,
// with dynamic micro-batching and a compiled-program cache that annotates
// every response with the modelled IPU latency and memory of its batch.
//
// Serve:
//
//	ipuserve -addr :8080 -methods dense,butterfly,pixelfly
//	curl -s localhost:8080/models
//	curl -s -X POST localhost:8080/predict \
//	    -d '{"model":"butterfly","features":[0.1, ... 1024 floats ...]}'
//	curl -s localhost:8080/stats
//
// Benchmark the serving stack instead of serving (compares the methods
// head-to-head and prints throughput plus p50/p95/p99 latency per method):
//
//	ipuserve -loadgen -rps 500 -duration 10s -methods dense,butterfly,pixelfly
//
// Shard models across several modelled IPUs (tensor-parallel or pipeline,
// planner-chosen; -loadgen then reports sharded vs unsharded side by side):
//
//	ipuserve -ipus 4 -shards 0 -ipu-mem 64 -methods dense,butterfly
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/obs/timeline"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/tensor"
)

var methodNames = map[string]nn.Method{
	"dense":     nn.Baseline,
	"baseline":  nn.Baseline,
	"butterfly": nn.Butterfly,
	"fastfood":  nn.Fastfood,
	"circulant": nn.Circulant,
	"lowrank":   nn.LowRank,
	"low-rank":  nn.LowRank,
	"pixelfly":  nn.Pixelfly,
}

func parseMethods(s string) ([]nn.Method, []string, error) {
	if s == "all" {
		names := []string{"dense", "butterfly", "fastfood", "circulant", "lowrank", "pixelfly"}
		ms := make([]nn.Method, len(names))
		for i, n := range names {
			ms[i] = methodNames[n]
		}
		return ms, names, nil
	}
	var ms []nn.Method
	var names []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.ToLower(strings.TrimSpace(tok))
		m, ok := methodNames[tok]
		if !ok {
			return nil, nil, fmt.Errorf("unknown method %q (want dense, butterfly, fastfood, circulant, lowrank, pixelfly or all)", tok)
		}
		ms = append(ms, m)
		names = append(names, tok)
	}
	return ms, names, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		n        = flag.Int("n", 1024, "SHL layer width (power of two; 1024 is the paper's)")
		classes  = flag.Int("classes", 10, "output classes")
		methods  = flag.String("methods", "dense,butterfly,pixelfly", "comma-separated methods to register, or 'all'")
		seed     = flag.Int64("seed", 42, "weight-init seed")
		maxBatch = flag.Int("maxbatch", 64, "micro-batcher: max coalesced batch size")
		maxDelay = flag.Duration("maxdelay", 2*time.Millisecond, "micro-batcher: max queue delay before flush")
		workers  = flag.Int("workers", 0, "micro-batcher: worker goroutines (0 = GOMAXPROCS)")
		device   = flag.String("device", "gc200", "device model for the program cache: gc200 or gc2")
		loadgen  = flag.Bool("loadgen", false, "run the built-in load generator instead of serving")
		rps      = flag.Int("rps", 500, "loadgen: offered requests/second per method")
		duration = flag.Duration("duration", 10*time.Second, "loadgen: time to offer load per method")
		burst    = flag.Int("burst", 1, "loadgen: requests issued per arrival tick (ticks slow to rps/burst, so the offered rate is unchanged; >1 lets the batcher coalesce multi-row batches)")
		microB   = flag.Int("microbatch", 0, "pipeline wavefront width: micro-batches per batch (0 = planner-picked, 1 = barrier loop)")
		benchout = flag.String("benchout", "BENCH_serve.json", "loadgen: machine-readable perf record path (empty disables)")
		history  = flag.String("history", "", "loadgen: append this run as one line of the JSONL perf history (empty disables)")
		metout   = flag.String("metricsout", "", "loadgen: after the load, scrape /metrics over a real loopback listener and write the exposition here (empty disables)")
		tlout    = flag.String("timeline-out", "", "loadgen: write one representative Chrome trace-event JSON timeline per model×shards here, loadable in Perfetto (empty disables)")
		ipus     = flag.Int("ipus", 1, "modelled IPUs available per model (IPU-Link pod size)")
		shards   = flag.Int("shards", 0, "shard count per model: 0 auto-picks the smallest that fits -ipu-mem")
		ipuMemMB = flag.Int("ipu-mem", 0, "per-IPU memory budget in MB for the auto shard pick (0 = full chip SRAM)")
		report   = flag.Bool("report", false, "render a markdown trajectory report from the -history JSONL and exit (default history: BENCH_history.jsonl)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof on the serving mux and pin per-model pprof labels around plan execution")
	)
	flag.Parse()

	if *report {
		path := *history
		if path == "" {
			path = "BENCH_history.jsonl"
		}
		if err := runReport(os.Stdout, path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ms, names, err := parseMethods(*methods)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var cfg ipu.Config
	switch strings.ToLower(*device) {
	case "gc200":
		cfg = ipu.GC200()
	case "gc2":
		cfg = ipu.GC2()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q (want gc200 or gc2)\n", *device)
		os.Exit(2)
	}

	bcfg := serve.BatcherConfig{
		MaxBatch: *maxBatch,
		MaxDelay: *maxDelay,
		Workers:  *workers,
	}
	opts := serve.Options{
		IPU:            cfg,
		Batcher:        bcfg,
		NumIPUs:        *ipus,
		PerIPUMemBytes: *ipuMemMB << 20,
		Shards:         *shards,
		MicroBatches:   *microB,
		PprofLabels:    *pprofOn,
	}
	reg := serve.NewRegistry(opts)
	defer reg.Close()

	specs := make([]serve.ModelSpec, len(ms))
	for i, m := range ms {
		specs[i] = serve.ModelSpec{
			Name: names[i], Method: m, N: *n, Classes: *classes, Seed: *seed,
		}
		info, err := reg.Register(specs[i])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("registered %-10s (%s, %d params, v%d, %d shard(s))\n",
			names[i], info.Info().Method, info.Info().Params, info.Info().Version, info.Info().Shards)
	}

	if *loadgen {
		// With a multi-IPU topology, also drive an unsharded registry over
		// the same specs so the perf record compares sharded vs unsharded
		// serving head-to-head. Built (and its models trained) only when at
		// least one model actually sharded — otherwise the baseline rows
		// would duplicate the main ones key-for-key.
		var base *serve.Registry
		anySharded := false
		for _, sp := range specs {
			if m, ok := reg.Get(sp.Name); ok && m.Shards() > 1 {
				anySharded = true
				break
			}
		}
		if *ipus > 1 && anySharded {
			baseOpts := opts
			baseOpts.NumIPUs, baseOpts.Shards, baseOpts.PerIPUMemBytes = 1, 0, 0
			base = serve.NewRegistry(baseOpts)
			defer base.Close()
			for _, sp := range specs {
				if _, err := base.Register(sp); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		runLoadgen(reg, base, specs, bcfg, *rps, *burst, *duration, *benchout, *history, *metout, *tlout)
		return
	}

	fmt.Printf("serving on %s (POST /predict, GET /models, GET /stats, GET /metrics, GET /debug/traces, GET /debug/costmodel, GET /healthz)\n", *addr)
	handler := http.Handler(serve.NewServer(reg))
	if *pprofOn {
		// The serving mux stays pprof-free by default; behind the flag the
		// standard profiling endpoints mount in front of it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		handler = mux
		fmt.Println("pprof enabled on /debug/pprof/ with per-model execution labels")
	}
	// Bounded server timeouts so a stalled or malicious client can't pin
	// a connection (and its goroutine) forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchRecord is the per-model block of the BENCH_serve.json perf record —
// the repo's machine-readable serving-performance trajectory.
type benchRecord struct {
	Model         string  `json:"model"`
	Shards        int     `json:"shards"`
	Strategy      string  `json:"strategy,omitempty"`
	RPS           int     `json:"offered_rps"`
	Done          int     `json:"done"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	AvgBatch      float64 `json:"avg_batch"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
}

// allocProbe compares the compiled-plan serving path against the
// pre-refactor per-layer allocating inference path (a batcher directly
// over Sequential.Infer), both driven by the same sequential
// single-request loop, in heap allocations per request.
type allocProbe struct {
	Model             string  `json:"model"`
	PlanAllocsPerOp   float64 `json:"plan_allocs_per_op"`
	LegacyAllocsPerOp float64 `json:"legacy_allocs_per_op"`
	ReductionFactor   float64 `json:"reduction_factor"`
}

// fusionProbe is the fused-vs-unfused plan comparison of one model at the
// batcher's largest batch bucket: step counts, resident arena bytes and
// modelled activation-arena traffic. cmd/benchgate gates TrafficBytes and
// FusedSteps so a silently disabled fusion pass fails CI.
type fusionProbe struct {
	Model               string  `json:"model"`
	Batch               int     `json:"batch"`
	Steps               int     `json:"plan_steps"`
	StepsUnfused        int     `json:"plan_steps_unfused"`
	FusedSteps          int     `json:"fused_steps"`
	TrafficBytes        int     `json:"traffic_bytes"`
	TrafficBytesUnfused int     `json:"traffic_bytes_unfused"`
	TrafficReduction    float64 `json:"traffic_reduction"`
	ArenaBytes          int     `json:"arena_bytes"`
	ArenaBytesUnfused   int     `json:"arena_bytes_unfused"`
}

// kernelRecord is one row of the per-kernel accounting table: cumulative
// work and achieved rates for one kernel family across every plan executed
// during the load. cmd/benchgate gates GFlopsPerSec per kernel.
type kernelRecord struct {
	Kernel string `json:"kernel"`
	// Variant is the micro-kernel shape the family's steps dispatched to
	// at compile time, gathered across the registry's models (distinct
	// variants joined with ","; empty when no model reported one).
	Variant      string  `json:"variant,omitempty"`
	Calls        int64   `json:"calls"`
	Flops        int64   `json:"flops"`
	ArenaBytes   int64   `json:"arena_bytes"`
	GFlopsPerSec float64 `json:"gflops_per_sec"`
	BytesPerSec  float64 `json:"bytes_per_sec"`
}

// driftRecord is one plan step's modelled-vs-measured cost: the modelled
// IPU seconds per row next to the measured host wall-clock per row. The
// absolute ratio reflects host-vs-modelled-IPU scale; benchgate watches
// its movement between runs, not its level.
type driftRecord struct {
	Model           string  `json:"model"`
	Shards          int     `json:"shards"`
	Step            string  `json:"step"`
	Variant         string  `json:"variant,omitempty"`
	ModelledSeconds float64 `json:"modelled_s_per_row"`
	MeasuredSeconds float64 `json:"measured_s_per_row"`
	Ratio           float64 `json:"ratio"`
}

// phaseRecord is one model's BSP phase-utilization block, aggregated
// from the flight recorder's sampled batches over the load: each phase's
// share of summed per-IPU executor time. cmd/benchgate gates
// BubbleFraction and ExchangeShare growth (-phase-tol) so the future
// exchange-overlap work has a ratchet to push against.
type phaseRecord struct {
	Model    string `json:"model"`
	Shards   int    `json:"shards"`
	Strategy string `json:"strategy,omitempty"`
	// MicroBatches is the wavefront width pipeline batches were split
	// into (0/1 = barrier loop; omitted for tensor-parallel models).
	MicroBatches   int     `json:"micro_batches,omitempty"`
	SampledBatches int64   `json:"sampled_batches"`
	ComputeShare   float64 `json:"compute_share"`
	ExchangeShare  float64 `json:"exchange_share"`
	BarrierShare   float64 `json:"barrier_share"`
	BubbleFraction float64 `json:"bubble_fraction"`
}

type benchFile struct {
	GeneratedAt     string         `json:"generated_at"`
	DurationSeconds float64        `json:"duration_s_per_model"`
	N               int            `json:"n"`
	Models          []benchRecord  `json:"models"`
	AllocProbes     []allocProbe   `json:"alloc_probes"`
	FusionProbes    []fusionProbe  `json:"fusion_probes"`
	Kernels         []kernelRecord `json:"kernels"`
	Drift           []driftRecord  `json:"drift"`
	Phases          []phaseRecord  `json:"phases,omitempty"`
}

// historySchema versions the JSONL history lines; cmd/benchgate rejects
// lines carrying a different version.
const historySchema = 1

// historyRecord is one line of the append-only perf history
// (BENCH_history.jsonl): everything one loadgen run measured, stamped
// with the schema version and the commit under test. benchgate's
// trajectory gate reads a subset of these fields.
type historyRecord struct {
	Schema          int            `json:"schema"`
	GeneratedAt     string         `json:"generated_at"`
	Commit          string         `json:"commit,omitempty"`
	N               int            `json:"n"`
	DurationSeconds float64        `json:"duration_s_per_model"`
	Models          []benchRecord  `json:"models"`
	Kernels         []kernelRecord `json:"kernels,omitempty"`
	Phases          []phaseRecord  `json:"phases,omitempty"`
}

// pass is one loadgen sweep over a registry's models; skip drops models
// whose rows would duplicate another pass's key-for-key.
type pass struct {
	r    *serve.Registry
	skip func(name string) bool
}

func runLoadgen(reg, base *serve.Registry, specs []serve.ModelSpec, bcfg serve.BatcherConfig, rps, burst int, duration time.Duration, benchout, history, metricsout, timelineOut string) {
	fmt.Printf("\nload: %d req/s per model for %v each (bursts of %d)\n\n", rps, duration, burst)
	fmt.Printf("%-10s %7s %8s %6s %10s %9s %9s %9s %9s %7s %10s %9s\n",
		"model", "shards", "done", "err", "thr(req/s)", "p50(ms)", "p95(ms)", "p99(ms)", "avg.batch", "hit%", "allocs/op", "ipu(µs/req)")
	var records []benchRecord
	var n int
	if len(specs) > 0 {
		n = specs[0].N
	}
	// The unsharded baseline first (when present), then the main registry:
	// the perf record then reads unsharded vs sharded per model. Models the
	// main registry left on one shard are skipped in the baseline pass —
	// their rows (and benchgate keys) would duplicate exactly.
	passes := []pass{{r: reg}}
	if base != nil {
		sharded := func(name string) bool {
			m, ok := reg.Get(name)
			return ok && m.Shards() > 1
		}
		passes = []pass{{r: base, skip: func(name string) bool { return !sharded(name) }}, {r: reg}}
	}
	for _, ps := range passes {
		r := ps.r
		for _, sp := range specs {
			if ps.skip != nil && ps.skip(sp.Name) {
				continue
			}
			rep, err := serve.RunLoad(context.Background(), r, sp.Name, serve.LoadConfig{
				RPS: rps, Duration: duration, Burst: burst,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if rep.AllErrors {
				fmt.Fprintf(os.Stderr, "warning: %s: all %d offered requests failed; zero percentiles below mean no data, not zero latency\n",
					sp.Name, rep.Offered)
			}
			m, _ := r.Get(sp.Name)
			shards := m.Shards()
			strategy := ""
			if cost, err := m.ModelledCost(int(rep.Batching.MaxBatch)); err == nil && cost != nil {
				strategy = cost.Strategy
			}
			ipuPerReq := modelledPerRequest(r, sp.Name, rep)
			fmt.Printf("%-10s %7d %8d %6d %10.1f %9.3f %9.3f %9.3f %9.2f %6.1f%% %10.1f %9s\n",
				sp.Name, shards, rep.Done, rep.Errors, rep.Throughput(),
				rep.Latency.P50*1e3, rep.Latency.P95*1e3, rep.Latency.P99*1e3,
				rep.Batching.AvgBatch, rep.Cache.HitRate*100, rep.AllocsPerOp, ipuPerReq)
			records = append(records, benchRecord{
				Model:         sp.Name,
				Shards:        shards,
				Strategy:      strategy,
				RPS:           rps,
				Done:          rep.Done,
				Errors:        rep.Errors,
				ThroughputRPS: rep.Throughput(),
				P50Millis:     rep.Latency.P50 * 1e3,
				P95Millis:     rep.Latency.P95 * 1e3,
				P99Millis:     rep.Latency.P99 * 1e3,
				AvgBatch:      rep.Batching.AvgBatch,
				AllocsPerOp:   rep.AllocsPerOp,
				BytesPerOp:    rep.BytesPerOp,
				CacheHitRate:  rep.Cache.HitRate,
			})
		}
	}
	cs := reg.CacheStats()
	fmt.Printf("\nprogram cache: %d entries, %d hits / %d misses (%.1f%% hit rate)\n",
		cs.Entries, cs.Hits, cs.Misses, cs.HitRate*100)

	// Phase utilization, from the same sharded-then-unsharded passes the
	// perf records use: per model, what share of summed per-IPU executor
	// time the flight recorder attributes to each BSP phase. Collected
	// (and the representative timelines exported) immediately after the
	// load passes, BEFORE the alloc/fusion probes below: the probes push
	// hundreds of sequential 1-row predicts through the same recorders,
	// which would dilute the load's batch mix and skew the bubble
	// fraction the phases block gates on.
	var phases []phaseRecord
	fmt.Printf("\nphase utilization (flight-recorder sampled batches; per-IPU shares of executor time):\n")
	fmt.Printf("%-10s %7s %-16s %5s %5s %9s %10s %9s %9s %8s\n",
		"model", "shards", "strategy", "micro", "ipu", "comp%", "exch%", "barr%", "bubble%", "batches")
	for _, ps := range passes {
		for _, sp := range specs {
			if ps.skip != nil && ps.skip(sp.Name) {
				continue
			}
			m, ok := ps.r.Get(sp.Name)
			if !ok {
				continue
			}
			sum, ok := m.TimelineSummary()
			if !ok {
				continue
			}
			phases = append(phases, phaseRecord{
				Model:          sum.Model,
				Shards:         sum.Shards,
				Strategy:       sum.Strategy,
				MicroBatches:   sum.MicroBatches,
				SampledBatches: sum.Batches,
				ComputeShare:   sum.ComputeShare,
				ExchangeShare:  sum.ExchangeShare,
				BarrierShare:   sum.BarrierShare,
				BubbleFraction: sum.BubbleFraction,
			})
			for _, row := range sum.PerIPU {
				fmt.Printf("%-10s %7d %-16s %5d %5d %8.1f%% %9.1f%% %8.1f%% %8.1f%% %8d\n",
					sum.Model, sum.Shards, sum.Strategy, sum.MicroBatches, row.IPU,
					row.ComputePct, row.ExchangePct, row.BarrierPct, row.BubblePct, sum.Batches)
			}
		}
	}

	if timelineOut != "" {
		if err := writeTimeline(timelineOut, passes, specs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace timeline written to %s\n", timelineOut)
	}

	fmt.Printf("\nalloc probe (sequential single requests, plan path vs pre-refactor Infer path):\n")
	fmt.Printf("%-10s %14s %16s %10s\n", "model", "plan(allocs)", "legacy(allocs)", "reduction")
	var probes []allocProbe
	for _, sp := range specs {
		p, err := probeAllocs(reg, sp, bcfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		probes = append(probes, p)
		fmt.Printf("%-10s %14.1f %16.1f %9.1fx\n",
			p.Model, p.PlanAllocsPerOp, p.LegacyAllocsPerOp, p.ReductionFactor)
	}

	fmt.Printf("\nfusion probe (compiled plan, fused vs unfused, batch %d):\n", bcfg.MaxBatch)
	fmt.Printf("%-10s %6s %8s %13s %15s %10s\n",
		"model", "steps", "unfused", "traffic(KiB)", "unfused(KiB)", "reduction")
	var fprobes []fusionProbe
	for _, sp := range specs {
		fp, err := probeFusion(sp, bcfg.MaxBatch)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fprobes = append(fprobes, fp)
		fmt.Printf("%-10s %6d %8d %13.1f %15.1f %9.2fx\n",
			fp.Model, fp.Steps, fp.StepsUnfused,
			float64(fp.TrafficBytes)/1024, float64(fp.TrafficBytesUnfused)/1024,
			fp.TrafficReduction)
	}

	kernels := kernelTable(reg)
	if len(kernels) > 0 {
		fmt.Printf("\nper-kernel accounting (cumulative over the load, main registry):\n")
		fmt.Printf("%-10s %-12s %10s %14s %10s %10s\n", "kernel", "variant", "calls", "GFLOP", "GFLOP/s", "GB/s")
		for _, k := range kernels {
			fmt.Printf("%-10s %-12s %10d %14.2f %10.2f %10.2f\n",
				k.Kernel, k.Variant, k.Calls, float64(k.Flops)/1e9, k.GFlopsPerSec, k.BytesPerSec/1e9)
		}
	}

	drift := driftTable(reg)
	if len(drift) > 0 {
		fmt.Printf("\ncost-model drift (measured host s/row vs modelled IPU s/row; watch movement, not level):\n")
		fmt.Printf("%-10s %7s %-22s %-12s %14s %14s %8s\n", "model", "shards", "step", "variant", "modelled(ns)", "measured(ns)", "ratio")
		for _, d := range drift {
			fmt.Printf("%-10s %7d %-22s %-12s %14.1f %14.1f %8.2f\n",
				d.Model, d.Shards, d.Step, d.Variant, d.ModelledSeconds*1e9, d.MeasuredSeconds*1e9, d.Ratio)
		}
	}

	if metricsout != "" {
		if err := scrapeMetrics(reg, metricsout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics exposition written to %s\n", metricsout)
	}

	if history != "" {
		if err := appendHistory(history, historyRecord{
			Schema:          historySchema,
			GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
			Commit:          os.Getenv("GITHUB_SHA"),
			N:               n,
			DurationSeconds: duration.Seconds(),
			Models:          records,
			Kernels:         kernels,
			Phases:          phases,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("perf history appended to %s\n", history)
	}

	if benchout == "" {
		return
	}
	out := benchFile{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		DurationSeconds: duration.Seconds(),
		N:               n,
		Models:          records,
		AllocProbes:     probes,
		FusionProbes:    fprobes,
		Kernels:         kernels,
		Drift:           drift,
		Phases:          phases,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := writeFileAtomic(benchout, append(data, '\n')); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("perf record written to %s\n", benchout)
}

// writeFileAtomic replaces path's contents via a temp file in the same
// directory and os.Rename, so a reader (cmd/benchgate, or a run killed
// mid-write) never sees a truncated perf record. The history JSONL needs
// no such treatment: its appends are single whole-line O_APPEND writes.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeTimeline dumps one representative Chrome trace-event timeline per
// model×shards across the loadgen passes: one trace process per model of
// each pass (unsharded and sharded rows are distinguished by the process
// label's strategy/shard suffix), each carrying its most recent sampled
// batch. The file loads directly in Perfetto or chrome://tracing.
func writeTimeline(path string, passes []pass, specs []serve.ModelSpec) error {
	var procs []timeline.ChromeProcess
	for _, ps := range passes {
		for _, sp := range specs {
			if ps.skip != nil && ps.skip(sp.Name) {
				continue
			}
			m, ok := ps.r.Get(sp.Name)
			if !ok {
				continue
			}
			proc, ok := m.TimelineProcess()
			if !ok {
				continue
			}
			// One representative batch — the most recent — per model×shards.
			proc.Batches = proc.Batches[len(proc.Batches)-1:]
			procs = append(procs, proc)
		}
	}
	var buf strings.Builder
	if err := timeline.WriteChrome(&buf, procs); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	return os.WriteFile(path, []byte(buf.String()), 0o644)
}

// kernelTable snapshots the registry's per-kernel accounting into the
// perf-record rows, skipping kernels that never ran, and annotates each
// family with the micro-kernel variant its models dispatched to.
func kernelTable(reg *serve.Registry) []kernelRecord {
	variants := map[string]map[string]bool{}
	for _, m := range reg.Models() {
		for fam, v := range m.KernelVariants() {
			if variants[fam] == nil {
				variants[fam] = map[string]bool{}
			}
			variants[fam][v] = true
		}
	}
	var out []kernelRecord
	for _, s := range reg.KernelStats().Snapshot() {
		var vs []string
		for v := range variants[s.Kernel] {
			vs = append(vs, v)
		}
		sort.Strings(vs)
		out = append(out, kernelRecord{
			Kernel:       s.Kernel,
			Variant:      strings.Join(vs, ","),
			Calls:        s.Calls,
			Flops:        s.Flops,
			ArenaBytes:   s.Bytes,
			GFlopsPerSec: s.GFlopsPerSec,
			BytesPerSec:  s.BytesPerSec,
		})
	}
	return out
}

// driftTable flattens every model's cost-model report into perf-record
// rows, dropping steps that never saw traffic (ratio 0).
func driftTable(reg *serve.Registry) []driftRecord {
	var out []driftRecord
	for _, m := range reg.Models() {
		name := m.Info().Name
		shards := m.Shards()
		for _, d := range m.CostModelReport() {
			if d.Ratio <= 0 {
				continue
			}
			out = append(out, driftRecord{
				Model:           name,
				Shards:          shards,
				Step:            d.Step,
				Variant:         d.Variant,
				ModelledSeconds: d.ModelledSeconds,
				MeasuredSeconds: d.MeasuredSeconds,
				Ratio:           d.Ratio,
			})
		}
	}
	return out
}

// appendHistory writes one compact JSON line to the append-only perf
// history, creating the file on first use. Appends are whole-line and
// O_APPEND, so concurrent runs interleave at line granularity.
func appendHistory(path string, rec historyRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// scrapeMetrics serves the registry on a loopback listener and fetches
// /metrics over real HTTP — the same path a Prometheus scrape takes — so
// the written exposition proves the endpoint end-to-end, not just the
// encoder.
func scrapeMetrics(reg *serve.Registry, path string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	srv := &http.Server{Handler: serve.NewServer(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics scrape: status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	return os.WriteFile(path, body, 0o644)
}

// probeAllocs measures heap allocations per request of the registered
// (plan-executing) model against a freshly built batcher running the same
// weights through the pre-refactor Sequential.Infer path. Both sides run
// the same sequential request loop; the plan side goes through the full
// Predict (its per-request bookkeeping is allocation-free, and the legacy
// loop mirrors the class selection), so the comparison is within ~1
// alloc/op of apples-to-apples.
func probeAllocs(reg *serve.Registry, sp serve.ModelSpec, bcfg serve.BatcherConfig) (allocProbe, error) {
	m, ok := reg.Get(sp.Name)
	if !ok {
		return allocProbe{}, fmt.Errorf("alloc probe: unknown model %q", sp.Name)
	}
	features := tensor.New(1, sp.N)
	features.FillRandom(rand.New(rand.NewSource(3)), 1)
	ctx := context.Background()

	plan, err := allocsPerOp(func() error {
		_, err := m.Predict(ctx, features.Data)
		return err
	})
	if err != nil {
		return allocProbe{}, fmt.Errorf("alloc probe %q (plan): %w", sp.Name, err)
	}

	legacyNet := nn.BuildSHL(sp.Method, sp.N, sp.Classes, rand.New(rand.NewSource(sp.Seed)))
	legacyBatcher := serve.NewBatcher(sp.N, bcfg, legacyNet.Infer)
	defer legacyBatcher.Stop()
	var sink int
	legacy, err := allocsPerOp(func() error {
		scores, _, err := legacyBatcher.Do(ctx, features.Data)
		// Mirror the per-request bookkeeping Predict performs on the plan
		// side (class selection) so the two loops stay comparable.
		sink = stats.ArgMax(scores)
		return err
	})
	_ = sink
	if err != nil {
		return allocProbe{}, fmt.Errorf("alloc probe %q (legacy): %w", sp.Name, err)
	}

	p := allocProbe{Model: sp.Name, PlanAllocsPerOp: plan, LegacyAllocsPerOp: legacy}
	if plan > 0 {
		p.ReductionFactor = legacy / plan
	}
	return p, nil
}

// probeFusion compiles the spec's network into a fused and an unfused
// plan at the batcher's largest batch bucket and reports the fusion win —
// the same weights the registry serves (specs are seed-deterministic), so
// the probe tracks exactly what the serving path executes.
func probeFusion(sp serve.ModelSpec, batch int) (fusionProbe, error) {
	net := nn.BuildSHL(sp.Method, sp.N, sp.Classes, rand.New(rand.NewSource(sp.Seed)))
	fused, err := net.CompilePlan(batch)
	if err != nil {
		return fusionProbe{}, fmt.Errorf("fusion probe %q: %w", sp.Name, err)
	}
	unfused, err := net.CompilePlanOpts(batch, nn.PlanOptions{NoFuse: true})
	if err != nil {
		return fusionProbe{}, fmt.Errorf("fusion probe %q (unfused): %w", sp.Name, err)
	}
	fs, us := fused.Stats(), unfused.Stats()
	fp := fusionProbe{
		Model:               sp.Name,
		Batch:               batch,
		Steps:               fs.Steps,
		StepsUnfused:        us.Steps,
		FusedSteps:          fs.FusedSteps,
		TrafficBytes:        fs.TrafficBytes,
		TrafficBytesUnfused: us.TrafficBytes,
		ArenaBytes:          fs.ArenaBytes,
		ArenaBytesUnfused:   us.ArenaBytes,
	}
	if fp.TrafficBytes > 0 {
		fp.TrafficReduction = float64(fp.TrafficBytesUnfused) / float64(fp.TrafficBytes)
	}
	return fp, nil
}

// allocsPerOp runs op sequentially and reports the process heap-allocation
// delta per call, after a warm-up that lets pools and plans settle.
func allocsPerOp(op func() error) (float64, error) {
	const warm, measured = 64, 256
	for i := 0; i < warm; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < measured; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / measured, nil
}

// modelledPerRequest reads the modelled per-request IPU latency at the
// run's largest coalesced batch bucket — a compiled program the load
// itself already cached, so this is a lookup, not a fresh compile.
func modelledPerRequest(reg *serve.Registry, name string, rep serve.LoadReport) string {
	m, ok := reg.Get(name)
	if !ok || rep.Batching.MaxBatch < 1 {
		return "-"
	}
	cost, err := m.ModelledCost(int(rep.Batching.MaxBatch))
	if err != nil {
		return "-"
	}
	return fmt.Sprintf("%.2f", cost.PerRequestSeconds*1e6)
}
