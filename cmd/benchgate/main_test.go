package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeHistory writes one JSONL history line per throughput value, all
// for the same single-model run shape ipuserve appends.
func writeHistory(t *testing.T, path string, throughputs []float64) {
	t.Helper()
	var b strings.Builder
	for i, thr := range throughputs {
		h := historyRecord{
			Schema:          historySchema,
			GeneratedAt:     fmt.Sprintf("2026-08-%02dT00:00:00Z", i+1),
			N:               1024,
			DurationSeconds: 6,
			Models:          []record{{Model: "butterfly", Shards: 2, ThroughputRPS: thr, AllocsPerOp: 2}},
		}
		line, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// gradualSeries is the acceptance fixture: a stable trajectory followed
// by three consecutive 5% losses. Each individual drop — and even the
// committed-baseline-vs-latest snapshot diff — stays inside the 20%
// snapshot tolerance, but the trajectory clearly stepped down.
func gradualSeries() []float64 {
	s := []float64{2000, 2000, 2000, 2000, 2000, 2000, 2000, 2000}
	last := s[len(s)-1]
	for i := 0; i < 3; i++ {
		last *= 0.95
		s = append(s, last)
	}
	return s
}

func TestHistoryFlagsGradualRegressionSnapshotMisses(t *testing.T) {
	series := gradualSeries()

	// The single-snapshot gate at its 20% tolerance does NOT fire: the
	// committed baseline (2000) vs the latest run compounds to ~14.3%.
	first, latest := series[0], series[len(series)-1]
	if d := rel(first, latest); d > 0.2 {
		t.Fatalf("fixture broken: snapshot drop %.3f should be inside the 0.2 tolerance", d)
	}

	// The trajectory gate does fire: the windowed means around the step
	// show a drop well beyond 5%.
	drop, at := worstStep(series, 3)
	if drop <= 0.05 {
		t.Fatalf("worstStep = %.3f at %d, want > 0.05 (step detection must catch the gradual decline)", drop, at)
	}
	if at != 8 {
		t.Fatalf("worst step localized at run %d, want 8 (where the decline starts)", at)
	}

	// End-to-end through the file loader and gate driver.
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	writeHistory(t, path, series)
	if !runHistory(io.Discard, path, 3, 0.05, false) {
		t.Fatal("runHistory should fail on the injected gradual regression")
	}
	if runHistory(io.Discard, path, 3, 0.05, true) {
		t.Fatal("lint-only mode must not gate the trajectory")
	}
}

func TestHistoryStableTrajectoryPasses(t *testing.T) {
	// ±2% jitter around a flat trajectory must not trip a 5% step gate.
	series := []float64{2000, 1980, 2030, 1990, 2010, 1975, 2025, 2005}
	drop, _ := worstStep(series, 3)
	if drop > 0.05 {
		t.Fatalf("worstStep = %.3f on jittery-but-flat series, want <= 0.05", drop)
	}
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	writeHistory(t, path, series)
	if runHistory(io.Discard, path, 3, 0.05, false) {
		t.Fatal("runHistory should pass a stable trajectory")
	}
}

func TestHistoryReportsInsufficientRuns(t *testing.T) {
	dir := t.TempDir()

	// A single run cannot support step detection at all: the gate passes
	// but must say so explicitly instead of silently printing "ok".
	one := filepath.Join(dir, "one.jsonl")
	writeHistory(t, one, []float64{2000})
	var buf strings.Builder
	if runHistory(&buf, one, 3, 0.05, false) {
		t.Fatal("single-run history should not fail the gate")
	}
	if out := buf.String(); !strings.Contains(out, "insufficient runs (1 < 2)") {
		t.Fatalf("single-run history should report insufficient runs, got:\n%s", out)
	}

	// Fewer runs than 2*window: detection still happens at a shrunken
	// window, and the output flags the reduced confidence.
	short := filepath.Join(dir, "short.jsonl")
	writeHistory(t, short, []float64{2000, 2000, 1000})
	buf.Reset()
	if !runHistory(&buf, short, 3, 0.05, false) {
		t.Fatal("a 50% cliff must still fail even below 2*window runs")
	}
	if out := buf.String(); !strings.Contains(out, "insufficient runs for window 3") {
		t.Fatalf("short history should note the reduced window, got:\n%s", out)
	}

	// At 2*window runs and beyond, the note disappears.
	full := filepath.Join(dir, "full.jsonl")
	writeHistory(t, full, []float64{2000, 2000, 2000, 2000, 2000, 2000})
	buf.Reset()
	if runHistory(&buf, full, 3, 0.05, false) {
		t.Fatal("flat full-window history should pass")
	}
	if out := buf.String(); strings.Contains(out, "insufficient") {
		t.Fatalf("full-window history should not claim insufficient runs, got:\n%s", out)
	}
}

func TestWorstStepShortSeries(t *testing.T) {
	if d, at := worstStep([]float64{100}, 3); at != -1 || d != 0 {
		t.Fatalf("single-run series: got drop=%v at=%d, want 0, -1", d, at)
	}
	// Two runs: window shrinks to 1 and the gate still sees the cliff.
	if d, _ := worstStep([]float64{100, 50}, 3); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("two-run cliff: drop = %v, want 0.5", d)
	}
}

func TestLoadHistoryRejectsMalformed(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.jsonl")
	good := `{"schema":1,"generated_at":"x","n":1024,"duration_s_per_model":6,"models":[{"model":"bf","shards":1,"throughput_rps":100,"allocs_per_op":2}]}`
	if err := os.WriteFile(bad, []byte(good+"\n{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadHistory(bad); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("malformed line should fail with its line number, got %v", err)
	}

	wrongSchema := filepath.Join(dir, "schema.jsonl")
	if err := os.WriteFile(wrongSchema, []byte(strings.Replace(good, `"schema":1`, `"schema":99`, 1)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadHistory(wrongSchema); err == nil || !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("unknown schema should fail, got %v", err)
	}

	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, []byte("\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadHistory(empty); err == nil {
		t.Fatal("history with no records should fail")
	}

	noModels := filepath.Join(dir, "nomodels.jsonl")
	if err := os.WriteFile(noModels, []byte(`{"schema":1,"models":[]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadHistory(noModels); err == nil {
		t.Fatal("record with no models should fail")
	}
}

func TestGateKernels(t *testing.T) {
	old := map[string]kernelRecord{
		"matmul":    {Kernel: "matmul", Calls: 100, GFlopsPerSec: 10},
		"butterfly": {Kernel: "butterfly", Calls: 100, GFlopsPerSec: 5},
	}

	// Within tolerance: a 10% dip on one kernel passes at tol 0.2.
	fresh := map[string]kernelRecord{
		"matmul":    {Kernel: "matmul", Calls: 90, GFlopsPerSec: 9},
		"butterfly": {Kernel: "butterfly", Calls: 110, GFlopsPerSec: 5.5},
	}
	if gateKernels(old, fresh, 0.2) {
		t.Fatal("10% per-kernel dip should pass at 20% tolerance")
	}

	// Beyond tolerance: a 30% GFLOP/s drop fails.
	slow := map[string]kernelRecord{
		"matmul":    {Kernel: "matmul", Calls: 100, GFlopsPerSec: 7},
		"butterfly": {Kernel: "butterfly", Calls: 100, GFlopsPerSec: 5},
	}
	if !gateKernels(old, slow, 0.2) {
		t.Fatal("30% per-kernel GFLOP/s drop should fail at 20% tolerance")
	}

	// A kernel vanishing from the fresh record means its accounting hook
	// (or the code path itself) was lost — always a failure.
	missing := map[string]kernelRecord{
		"matmul": {Kernel: "matmul", Calls: 100, GFlopsPerSec: 10},
	}
	if !gateKernels(old, missing, 0.2) {
		t.Fatal("kernel missing from the fresh record should fail")
	}

	// A brand-new kernel has no baseline and is reported, not gated.
	grown := map[string]kernelRecord{
		"matmul":    {Kernel: "matmul", Calls: 100, GFlopsPerSec: 10},
		"butterfly": {Kernel: "butterfly", Calls: 100, GFlopsPerSec: 5},
		"fwht":      {Kernel: "fwht", Calls: 10, GFlopsPerSec: 1},
	}
	if gateKernels(old, grown, 0.2) {
		t.Fatal("new kernel without a baseline must not fail the gate")
	}
}

func TestGateDrift(t *testing.T) {
	mk := func(ratio float64) map[string]driftRecord {
		d := driftRecord{Model: "bf", Shards: 2, Step: "butterfly(256)+relu@ipu0", Ratio: ratio}
		return map[string]driftRecord{driftKey(d): d}
	}

	// The ratio's absolute level never matters — a steady 40x passes.
	if gateDrift(mk(40), mk(40), 1.0) {
		t.Fatal("unchanged drift ratio should pass regardless of level")
	}
	// Movement within e^1 ≈ 2.72x either way passes at drift-tol 1.0.
	if gateDrift(mk(10), mk(20), 1.0) {
		t.Fatal("2x drift movement should pass at log tolerance 1.0")
	}
	// Movement beyond the tolerance fails, in either direction.
	if !gateDrift(mk(10), mk(40), 1.0) {
		t.Fatal("4x upward drift movement should fail at log tolerance 1.0")
	}
	if !gateDrift(mk(40), mk(10), 1.0) {
		t.Fatal("4x downward drift movement should fail at log tolerance 1.0")
	}
	// Steps that appear or vanish (plan recompiled differently) and rows
	// without data are skipped, not failed.
	other := driftRecord{Model: "bf", Shards: 2, Step: "renamed@ipu0", Ratio: 40}
	if gateDrift(mk(40), map[string]driftRecord{driftKey(other): other}, 1.0) {
		t.Fatal("renamed step should be skipped, not failed")
	}
	if gateDrift(mk(0), mk(40), 1.0) {
		t.Fatal("zero-ratio baseline row should be skipped")
	}
}

func TestSnapshotGateEndToEnd(t *testing.T) {
	// Full-file snapshot: the kernel table rides in BENCH_serve.json next
	// to the model records, and runSnapshot gates both.
	dir := t.TempDir()
	write := func(name string, f benchFile) string {
		t.Helper()
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldFile := benchFile{
		Models:  []record{{Model: "bf", Shards: 2, ThroughputRPS: 1000, AllocsPerOp: 2}},
		Kernels: []kernelRecord{{Kernel: "butterfly", Calls: 100, GFlopsPerSec: 5}},
		Drift:   []driftRecord{{Model: "bf", Shards: 2, Step: "s0", Ratio: 10}},
	}
	oldPath := write("old.json", oldFile)

	good := oldFile
	goodPath := write("good.json", good)
	if runSnapshot(oldPath, goodPath, 0.2, 50, 0.2, 1.0, 0.05) {
		t.Fatal("identical records should pass the snapshot gate")
	}

	badKernel := oldFile
	badKernel.Kernels = []kernelRecord{{Kernel: "butterfly", Calls: 100, GFlopsPerSec: 3}}
	badPath := write("badkernel.json", badKernel)
	if !runSnapshot(oldPath, badPath, 0.2, 50, 0.2, 1.0, 0.05) {
		t.Fatal("40% kernel GFLOP/s drop should fail the snapshot gate")
	}

	badDrift := oldFile
	badDrift.Drift = []driftRecord{{Model: "bf", Shards: 2, Step: "s0", Ratio: 100}}
	badDriftPath := write("baddrift.json", badDrift)
	if !runSnapshot(oldPath, badDriftPath, 0.2, 50, 0.2, 1.0, 0.05) {
		t.Fatal("10x drift-ratio movement should fail the snapshot gate")
	}
}

func TestGatePhases(t *testing.T) {
	mk := func(bubble, exch float64) map[string]phaseRecord {
		p := phaseRecord{Model: "bf", Shards: 2, BubbleFraction: bubble, ExchangeShare: exch}
		return map[string]phaseRecord{phaseKey(p): p}
	}
	if gatePhases(mk(0.20, 0.10), mk(0.22, 0.11), 0.05) {
		t.Fatal("movement within the absolute tolerance should pass")
	}
	if !gatePhases(mk(0.20, 0.10), mk(0.30, 0.10), 0.05) {
		t.Fatal("bubble fraction growing by 10 share points should fail at tol 0.05")
	}
	if !gatePhases(mk(0.20, 0.10), mk(0.20, 0.20), 0.05) {
		t.Fatal("exchange share growing by 10 share points should fail at tol 0.05")
	}
	// Shrinking is the goal, never a regression.
	if gatePhases(mk(0.20, 0.10), mk(0.01, 0.01), 0.05) {
		t.Fatal("shrinking bubble and exchange should pass")
	}
	// A model whose committed record has a phases block must keep one.
	if !gatePhases(mk(0.20, 0.10), map[string]phaseRecord{}, 0.05) {
		t.Fatal("a vanished phases block should fail")
	}
	// No committed phases block (pre-recorder record) gates nothing.
	if gatePhases(map[string]phaseRecord{}, mk(0.99, 0.99), 0.05) {
		t.Fatal("a record without a committed phases baseline should not be gated")
	}
}

func TestHistorySeriesPivot(t *testing.T) {
	runs := []historyRecord{
		{Schema: 1, Models: []record{{Model: "a", Shards: 1, ThroughputRPS: 10}, {Model: "b", Shards: 2, ThroughputRPS: 20}}},
		{Schema: 1, Models: []record{{Model: "a", Shards: 1, ThroughputRPS: 11}}},
		{Schema: 1, Models: []record{{Model: "a", Shards: 1, ThroughputRPS: 12}, {Model: "b", Shards: 2, ThroughputRPS: 22}}},
	}
	series := historySeries(runs)
	if got := series["a/s1"]; len(got) != 3 || got[2] != 12 {
		t.Fatalf("series a/s1 = %v", got)
	}
	// b skipped the middle run; its series just has a gap.
	if got := series["b/s2"]; len(got) != 2 || got[1] != 22 {
		t.Fatalf("series b/s2 = %v", got)
	}
}

// TestSnapshotGateTruncatedRecord pins the failure mode the atomic
// temp+rename write in cmd/ipuserve exists to prevent: a perf record cut
// off mid-JSON (a loadgen run killed during a direct write) must fail the
// snapshot gate loudly on either side, never parse as an empty record
// that gates nothing.
func TestSnapshotGateTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	full, err := json.Marshal(benchFile{
		Models:  []record{{Model: "bf", Shards: 2, ThroughputRPS: 1000, AllocsPerOp: 2}},
		Kernels: []kernelRecord{{Kernel: "butterfly", Calls: 100, GFlopsPerSec: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	goodPath := filepath.Join(dir, "good.json")
	if err := os.WriteFile(goodPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	truncPath := filepath.Join(dir, "trunc.json")
	if err := os.WriteFile(truncPath, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if !runSnapshot(truncPath, goodPath, 0.2, 50, 0.2, 1.0, 0.05) {
		t.Fatal("truncated committed record must fail the snapshot gate")
	}
	if !runSnapshot(goodPath, truncPath, 0.2, 50, 0.2, 1.0, 0.05) {
		t.Fatal("truncated fresh record must fail the snapshot gate")
	}
}
