// Command benchgate is the CI perf gate: it diffs a freshly generated
// BENCH_serve.json (ipuserve -loadgen -benchout) against the committed
// record and fails when throughput drops, or allocations per request
// grow, by more than the tolerance.
//
//	benchgate -old BENCH_serve.json -new /tmp/fresh.json -tol 0.2
//
// Records are matched on (model, shards); models present only in the
// fresh file are reported but not gated, models missing from it fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors the per-model block of BENCH_serve.json (only the gated
// and identifying fields).
type record struct {
	Model         string  `json:"model"`
	Shards        int     `json:"shards"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// fusionRecord mirrors the per-model fusion probe: the plan-level fusion
// pass's modelled arena traffic and fused-step count. Gated absolutely —
// these are deterministic compile-time properties, so any growth means the
// fusion pass stopped firing somewhere.
type fusionRecord struct {
	Model               string `json:"model"`
	Steps               int    `json:"plan_steps"`
	FusedSteps          int    `json:"fused_steps"`
	TrafficBytes        int    `json:"traffic_bytes"`
	TrafficBytesUnfused int    `json:"traffic_bytes_unfused"`
}

type benchFile struct {
	Models       []record       `json:"models"`
	FusionProbes []fusionRecord `json:"fusion_probes"`
}

func load(path string) (map[string]record, map[string]fusionRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(f.Models))
	for _, r := range f.Models {
		out[key(r)] = r
	}
	fus := make(map[string]fusionRecord, len(f.FusionProbes))
	for _, r := range f.FusionProbes {
		fus[r.Model] = r
	}
	return out, fus, nil
}

func key(r record) string {
	shards := r.Shards
	if shards < 1 {
		shards = 1 // records predating the sharding field
	}
	return fmt.Sprintf("%s/s%d", r.Model, shards)
}

func main() {
	oldPath := flag.String("old", "BENCH_serve.json", "committed perf record")
	newPath := flag.String("new", "", "freshly generated perf record")
	tol := flag.Float64("tol", 0.2, "allowed relative regression (0.2 = 20%)")
	allocSlack := flag.Float64("alloc-slack", 50,
		"absolute allocs/op increase always tolerated: sync.Pool refills after a GC recompile a plan inside the measurement window, which jitters the per-op figure by tens of allocs; a real loss of the compiled-plan path costs hundreds")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	oldRecs, oldFus, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newRecs, newFus, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false
	for k, o := range oldRecs {
		n, ok := newRecs[k]
		if !ok {
			fmt.Printf("FAIL %-22s missing from the fresh record\n", k)
			failed = true
			continue
		}
		thrDrop := rel(o.ThroughputRPS, n.ThroughputRPS)
		allocGrow := -rel(o.AllocsPerOp, n.AllocsPerOp)
		status := "ok  "
		if thrDrop > *tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s throughput %8.1f -> %8.1f req/s (%+.1f%%)\n",
			status, k, o.ThroughputRPS, n.ThroughputRPS,
			100*(n.ThroughputRPS-o.ThroughputRPS)/o.ThroughputRPS)
		status = "ok  "
		if allocGrow > *tol && n.AllocsPerOp-o.AllocsPerOp > *allocSlack {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s allocs/op  %8.1f -> %8.1f       (%+.1f%%)\n",
			status, k, o.AllocsPerOp, n.AllocsPerOp,
			100*(n.AllocsPerOp-o.AllocsPerOp)/max(o.AllocsPerOp, 1e-9))
	}
	for k := range newRecs {
		if _, ok := oldRecs[k]; !ok {
			fmt.Printf("new  %-22s (no committed baseline, not gated)\n", k)
		}
	}
	// Fusion probes are compile-time deterministic: modelled arena traffic
	// must not grow and fused-step coverage must not shrink, at all.
	for m, o := range oldFus {
		n, ok := newFus[m]
		if !ok {
			fmt.Printf("FAIL %-22s fusion probe missing from the fresh record\n", m)
			failed = true
			continue
		}
		status := "ok  "
		if n.TrafficBytes > o.TrafficBytes || n.FusedSteps < o.FusedSteps {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s fusion     %8d -> %8d traffic B   (%d/%d steps fused)\n",
			status, m, o.TrafficBytes, n.TrafficBytes, n.FusedSteps, n.Steps)
	}
	for m := range newFus {
		if _, ok := oldFus[m]; !ok {
			fmt.Printf("new  %-22s fusion probe (no committed baseline, not gated)\n", m)
		}
	}
	if failed {
		fmt.Printf("\nperf gate FAILED (tolerance %.0f%%) — if intentional, regenerate BENCH_serve.json\n", *tol*100)
		os.Exit(1)
	}
	fmt.Printf("\nperf gate passed (tolerance %.0f%%)\n", *tol*100)
}

// rel returns how far below base the candidate fell as a fraction of
// base (negate for growth); non-positive baselines gate nothing.
func rel(base, candidate float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - candidate) / base
}
