// Command benchgate is the CI perf gate: it diffs a freshly generated
// BENCH_serve.json (ipuserve -loadgen -benchout) against the committed
// record and fails when throughput drops, or allocations per request
// grow, by more than the tolerance.
//
//	benchgate -old BENCH_serve.json -new /tmp/fresh.json -tol 0.2
//
// Records are matched on (model, shards); models present only in the
// fresh file are reported but not gated, models missing from it fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record mirrors the per-model block of BENCH_serve.json (only the gated
// and identifying fields).
type record struct {
	Model         string  `json:"model"`
	Shards        int     `json:"shards"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

type benchFile struct {
	Models []record `json:"models"`
}

func load(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]record, len(f.Models))
	for _, r := range f.Models {
		out[key(r)] = r
	}
	return out, nil
}

func key(r record) string {
	shards := r.Shards
	if shards < 1 {
		shards = 1 // records predating the sharding field
	}
	return fmt.Sprintf("%s/s%d", r.Model, shards)
}

func main() {
	oldPath := flag.String("old", "BENCH_serve.json", "committed perf record")
	newPath := flag.String("new", "", "freshly generated perf record")
	tol := flag.Float64("tol", 0.2, "allowed relative regression (0.2 = 20%)")
	allocSlack := flag.Float64("alloc-slack", 50,
		"absolute allocs/op increase always tolerated: sync.Pool refills after a GC recompile a plan inside the measurement window, which jitters the per-op figure by tens of allocs; a real loss of the compiled-plan path costs hundreds")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	oldRecs, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newRecs, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false
	for k, o := range oldRecs {
		n, ok := newRecs[k]
		if !ok {
			fmt.Printf("FAIL %-22s missing from the fresh record\n", k)
			failed = true
			continue
		}
		thrDrop := rel(o.ThroughputRPS, n.ThroughputRPS)
		allocGrow := -rel(o.AllocsPerOp, n.AllocsPerOp)
		status := "ok  "
		if thrDrop > *tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s throughput %8.1f -> %8.1f req/s (%+.1f%%)\n",
			status, k, o.ThroughputRPS, n.ThroughputRPS,
			100*(n.ThroughputRPS-o.ThroughputRPS)/o.ThroughputRPS)
		status = "ok  "
		if allocGrow > *tol && n.AllocsPerOp-o.AllocsPerOp > *allocSlack {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s allocs/op  %8.1f -> %8.1f       (%+.1f%%)\n",
			status, k, o.AllocsPerOp, n.AllocsPerOp,
			100*(n.AllocsPerOp-o.AllocsPerOp)/max(o.AllocsPerOp, 1e-9))
	}
	for k := range newRecs {
		if _, ok := oldRecs[k]; !ok {
			fmt.Printf("new  %-22s (no committed baseline, not gated)\n", k)
		}
	}
	if failed {
		fmt.Printf("\nperf gate FAILED (tolerance %.0f%%) — if intentional, regenerate BENCH_serve.json\n", *tol*100)
		os.Exit(1)
	}
	fmt.Printf("\nperf gate passed (tolerance %.0f%%)\n", *tol*100)
}

// rel returns how far below base the candidate fell as a fraction of
// base (negate for growth); non-positive baselines gate nothing.
func rel(base, candidate float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - candidate) / base
}
