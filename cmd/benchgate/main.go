// Command benchgate is the CI perf gate. It has two modes, usable
// together:
//
// Snapshot mode diffs a freshly generated BENCH_serve.json (ipuserve
// -loadgen -benchout) against the committed record and fails when
// throughput drops, allocations per request grow, a per-kernel GFLOP/s
// rate falls (or a kernel vanishes from the table), or a plan step's
// cost-model drift ratio moves further than -drift-tol in log space:
//
//	benchgate -old BENCH_serve.json -new /tmp/fresh.json -tol 0.2 -drift-tol 1.0
//
// History mode reads the append-only BENCH_history.jsonl (one record per
// loadgen run, ipuserve -loadgen -history) and runs step detection over
// each model's throughput trajectory: at every split point it compares
// the windowed mean before against the windowed mean after, and fails
// when the worst drop exceeds -step-tol. This catches gradual
// regressions — e.g. three consecutive 5% losses compound to ~14%,
// inside a 20% snapshot tolerance but far outside a 5% trajectory step:
//
//	benchgate -history BENCH_history.jsonl -window 3 -step-tol 0.05
//	benchgate -history BENCH_history.jsonl -history-lint   # well-formedness only
//
// Snapshot mode also gates the BSP phase-utilization blocks when both
// records carry them: a model's pipeline bubble fraction or exchange
// share may not grow by more than -phase-tol (absolute share points)
// over the committed record. Records predating the phase flight
// recorder simply contribute no phase rows.
//
// Timeline mode lints a Chrome trace-event dump written by
// ipuserve -loadgen -timeline-out: the file must parse, contain only
// complete/metadata events, and every (process, track) must be
// monotonic and non-overlapping:
//
//	benchgate -timeline /tmp/timeline.json
//
// Snapshot records are matched on (model, shards); models present only
// in the fresh file are reported but not gated, models missing from it
// fail.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/obs/timeline"
)

// record mirrors the per-model block of BENCH_serve.json (only the gated
// and identifying fields).
type record struct {
	Model         string  `json:"model"`
	Shards        int     `json:"shards"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// fusionRecord mirrors the per-model fusion probe: the plan-level fusion
// pass's modelled arena traffic and fused-step count. Gated absolutely —
// these are deterministic compile-time properties, so any growth means the
// fusion pass stopped firing somewhere.
type fusionRecord struct {
	Model               string `json:"model"`
	Steps               int    `json:"plan_steps"`
	FusedSteps          int    `json:"fused_steps"`
	TrafficBytes        int    `json:"traffic_bytes"`
	TrafficBytesUnfused int    `json:"traffic_bytes_unfused"`
}

// kernelRecord mirrors one row of the per-kernel accounting table:
// achieved GFLOP/s per kernel family over the loadgen run. Gated like
// throughput — a kernel present in the committed record must stay present
// and within tolerance of its recorded rate.
type kernelRecord struct {
	Kernel       string  `json:"kernel"`
	Calls        int64   `json:"calls"`
	GFlopsPerSec float64 `json:"gflops_per_sec"`
}

// driftRecord mirrors one cost-model drift row: measured host seconds per
// row over modelled IPU seconds per row for one plan step. The absolute
// ratio mixes host and modelled-device scales, so the gate compares its
// movement between the committed and fresh records in log space rather
// than gating the level.
type driftRecord struct {
	Model  string  `json:"model"`
	Shards int     `json:"shards"`
	Step   string  `json:"step"`
	Ratio  float64 `json:"ratio"`
}

// phaseRecord mirrors one model's BSP phase-utilization block from the
// flight recorder: shares of sampled per-IPU wall spent in each phase.
// Shares are dimensionless and machine-independent, so unlike raw
// throughput they are gated on absolute movement.
type phaseRecord struct {
	Model          string  `json:"model"`
	Shards         int     `json:"shards"`
	Strategy       string  `json:"strategy,omitempty"`
	SampledBatches int64   `json:"sampled_batches"`
	ComputeShare   float64 `json:"compute_share"`
	ExchangeShare  float64 `json:"exchange_share"`
	BarrierShare   float64 `json:"barrier_share"`
	BubbleFraction float64 `json:"bubble_fraction"`
}

type benchFile struct {
	Models       []record       `json:"models"`
	FusionProbes []fusionRecord `json:"fusion_probes"`
	Kernels      []kernelRecord `json:"kernels"`
	Drift        []driftRecord  `json:"drift"`
	Phases       []phaseRecord  `json:"phases,omitempty"`
}

// historySchema is the JSONL history record version this gate reads;
// ipuserve stamps it on every appended run.
const historySchema = 1

// historyRecord is one line of BENCH_history.jsonl — one loadgen run.
// Only the identifying and gated fields are decoded; ipuserve writes a
// superset.
type historyRecord struct {
	Schema          int           `json:"schema"`
	GeneratedAt     string        `json:"generated_at"`
	Commit          string        `json:"commit,omitempty"`
	N               int           `json:"n"`
	DurationSeconds float64       `json:"duration_s_per_model"`
	Models          []record      `json:"models"`
	Phases          []phaseRecord `json:"phases,omitempty"`
}

// loadHistory parses the append-only JSONL history, rejecting malformed
// lines with their line number so a corrupted append fails loudly.
func loadHistory(path string) ([]historyRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var runs []historyRecord
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var h historyRecord
		if err := json.Unmarshal(line, &h); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		if h.Schema != historySchema {
			return nil, fmt.Errorf("%s:%d: schema %d, want %d", path, i+1, h.Schema, historySchema)
		}
		if len(h.Models) == 0 {
			return nil, fmt.Errorf("%s:%d: record has no models", path, i+1)
		}
		runs = append(runs, h)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no history records", path)
	}
	return runs, nil
}

// historySeries pivots the runs into one throughput series per
// (model, shards) key, in run order. Keys absent from a run simply skip
// that run (a model added later starts its series there).
func historySeries(runs []historyRecord) map[string][]float64 {
	series := map[string][]float64{}
	for _, h := range runs {
		for _, r := range h.Models {
			series[key(r)] = append(series[key(r)], r.ThroughputRPS)
		}
	}
	return series
}

// worstStep scans every split point of the series, comparing the mean of
// up to w runs before against the mean of up to w runs after, and
// returns the largest relative drop and the split index it occurred at
// (-1 when the series is too short to split). Windowed means smooth
// single-run jitter while still localizing where a trajectory stepped
// down.
func worstStep(series []float64, w int) (drop float64, at int) {
	at = -1
	if len(series) < 2 {
		return 0, at
	}
	if half := len(series) / 2; w > half {
		w = half
	}
	if w < 1 {
		w = 1
	}
	for i := w; i+w <= len(series); i++ {
		d := rel(mean(series[i-w:i]), mean(series[i:i+w]))
		if at == -1 || d > drop {
			drop, at = d, i
		}
	}
	return drop, at
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// runHistory validates the JSONL history and (unless lintOnly) gates the
// per-model throughput trajectories on step detection. Series too short
// for the configured window are reported explicitly — "insufficient runs"
// rather than a silent pass — so a truncated history is visible in the CI
// log. Returns whether the gate failed.
func runHistory(w io.Writer, path string, window int, stepTol float64, lintOnly bool) bool {
	runs, err := loadHistory(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return true
	}
	fmt.Fprintf(w, "history: %d run(s) in %s\n", len(runs), path)
	if lintOnly {
		fmt.Fprintln(w, "history well-formed (lint only, trajectory not gated)")
		return false
	}
	series := historySeries(runs)
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := false
	for _, k := range keys {
		s := series[k]
		drop, at := worstStep(s, window)
		if at == -1 {
			fmt.Fprintf(w, "skip %-22s insufficient runs (%d < 2), step detection not possible\n", k, len(s))
			continue
		}
		status := "ok  "
		if drop > stepTol {
			status = "FAIL"
			failed = true
		}
		note := ""
		if len(s) < 2*window {
			note = fmt.Sprintf("  [insufficient runs for window %d: detecting at window %d]", window, max(len(s)/2, 1))
		}
		fmt.Fprintf(w, "%s %-22s %d runs, latest %8.1f req/s, worst step %+.1f%% at run %d%s\n",
			status, k, len(s), s[len(s)-1], -100*drop, at+1, note)
	}
	if failed {
		fmt.Fprintf(w, "\nhistory gate FAILED (step tolerance %.0f%%) — the throughput trajectory stepped down\n", stepTol*100)
	}
	return failed
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func (f *benchFile) byModel() map[string]record {
	out := make(map[string]record, len(f.Models))
	for _, r := range f.Models {
		out[key(r)] = r
	}
	return out
}

func (f *benchFile) byFusion() map[string]fusionRecord {
	out := make(map[string]fusionRecord, len(f.FusionProbes))
	for _, r := range f.FusionProbes {
		out[r.Model] = r
	}
	return out
}

func (f *benchFile) byKernel() map[string]kernelRecord {
	out := make(map[string]kernelRecord, len(f.Kernels))
	for _, r := range f.Kernels {
		out[r.Kernel] = r
	}
	return out
}

// driftKey identifies a drift row across records: same model, shard count
// and plan step.
func driftKey(d driftRecord) string {
	return fmt.Sprintf("%s/s%d/%s", d.Model, d.Shards, d.Step)
}

func (f *benchFile) byDrift() map[string]driftRecord {
	out := make(map[string]driftRecord, len(f.Drift))
	for _, r := range f.Drift {
		out[driftKey(r)] = r
	}
	return out
}

// phaseKey identifies a phase row across records: same model and shard
// count.
func phaseKey(p phaseRecord) string {
	shards := p.Shards
	if shards < 1 {
		shards = 1
	}
	return fmt.Sprintf("%s/s%d", p.Model, shards)
}

func (f *benchFile) byPhase() map[string]phaseRecord {
	out := make(map[string]phaseRecord, len(f.Phases))
	for _, r := range f.Phases {
		out[phaseKey(r)] = r
	}
	return out
}

func key(r record) string {
	shards := r.Shards
	if shards < 1 {
		shards = 1 // records predating the sharding field
	}
	return fmt.Sprintf("%s/s%d", r.Model, shards)
}

func main() {
	oldPath := flag.String("old", "BENCH_serve.json", "committed perf record")
	newPath := flag.String("new", "", "freshly generated perf record (enables snapshot mode)")
	tol := flag.Float64("tol", 0.2, "snapshot: allowed relative regression (0.2 = 20%)")
	allocSlack := flag.Float64("alloc-slack", 50,
		"absolute allocs/op increase always tolerated: sync.Pool refills after a GC recompile a plan inside the measurement window, which jitters the per-op figure by tens of allocs; a real loss of the compiled-plan path costs hundreds")
	history := flag.String("history", "", "append-only JSONL perf history (enables trajectory mode)")
	window := flag.Int("window", 3, "history: runs averaged on each side of a split point")
	stepTol := flag.Float64("step-tol", 0.05, "history: relative windowed-mean throughput drop that fails the gate")
	histLint := flag.Bool("history-lint", false, "history: validate JSONL well-formedness only, don't gate the trajectory")
	driftTol := flag.Float64("drift-tol", 1.0,
		"snapshot: allowed log-space movement of a step's cost-model drift ratio (1.0 = the measured/modelled ratio may move by up to 2x either way between records)")
	kernelTol := flag.Float64("kernel-tol", 0.2,
		"snapshot: allowed relative per-kernel GFLOP/s drop (a vanished kernel always fails); widen when comparing records across machines, since raw kernel rates track machine speed directly")
	phaseTol := flag.Float64("phase-tol", 0.05,
		"snapshot: allowed absolute growth of a model's bubble fraction or exchange share over the committed phases block (0.05 = five share points); phases are machine-independent ratios, so the gate is absolute rather than relative")
	tracePath := flag.String("timeline", "", "Chrome trace-event JSON dump to lint (enables timeline mode)")
	flag.Parse()
	if *newPath == "" && *history == "" && *tracePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new, -history and/or -timeline is required")
		os.Exit(2)
	}
	failed := false
	if *history != "" {
		failed = runHistory(os.Stdout, *history, *window, *stepTol, *histLint) || failed
	}
	if *newPath != "" {
		failed = runSnapshot(*oldPath, *newPath, *tol, *allocSlack, *kernelTol, *driftTol, *phaseTol) || failed
	}
	if *tracePath != "" {
		failed = runTimeline(os.Stdout, *tracePath) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// runTimeline lints a Chrome trace-event dump: it must parse as
// trace-event JSON, hold only complete ("X") and metadata ("M") events,
// and every (process, track) pair's complete events must be monotonic
// and non-overlapping — overlap on a track means the recorder attributed
// two phases to the same IPU at once, which Perfetto would render as
// nested spans and which is physically meaningless for BSP.
func runTimeline(w io.Writer, path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return true
	}
	n, err := timeline.LintChrome(data)
	if err != nil {
		fmt.Fprintf(w, "FAIL timeline %s: %v\n", path, err)
		return true
	}
	fmt.Fprintf(w, "ok   timeline %s: %d complete event(s), tracks monotonic and non-overlapping\n", path, n)
	return false
}

// runSnapshot diffs the fresh perf record against the committed one and
// reports whether the gate failed.
func runSnapshot(oldPath, newPath string, tol, allocSlack, kernelTol, driftTol, phaseTol float64) bool {
	oldFile, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return true
	}
	newFile, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		return true
	}
	oldRecs, newRecs := oldFile.byModel(), newFile.byModel()
	oldFus, newFus := oldFile.byFusion(), newFile.byFusion()

	failed := false
	for k, o := range oldRecs {
		n, ok := newRecs[k]
		if !ok {
			fmt.Printf("FAIL %-22s missing from the fresh record\n", k)
			failed = true
			continue
		}
		thrDrop := rel(o.ThroughputRPS, n.ThroughputRPS)
		allocGrow := -rel(o.AllocsPerOp, n.AllocsPerOp)
		status := "ok  "
		if thrDrop > tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s throughput %8.1f -> %8.1f req/s (%+.1f%%)\n",
			status, k, o.ThroughputRPS, n.ThroughputRPS,
			100*(n.ThroughputRPS-o.ThroughputRPS)/o.ThroughputRPS)
		status = "ok  "
		if allocGrow > tol && n.AllocsPerOp-o.AllocsPerOp > allocSlack {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s allocs/op  %8.1f -> %8.1f       (%+.1f%%)\n",
			status, k, o.AllocsPerOp, n.AllocsPerOp,
			100*(n.AllocsPerOp-o.AllocsPerOp)/max(o.AllocsPerOp, 1e-9))
	}
	for k := range newRecs {
		if _, ok := oldRecs[k]; !ok {
			fmt.Printf("new  %-22s (no committed baseline, not gated)\n", k)
		}
	}
	// Fusion probes are compile-time deterministic: modelled arena traffic
	// must not grow and fused-step coverage must not shrink, at all.
	for m, o := range oldFus {
		n, ok := newFus[m]
		if !ok {
			fmt.Printf("FAIL %-22s fusion probe missing from the fresh record\n", m)
			failed = true
			continue
		}
		status := "ok  "
		if n.TrafficBytes > o.TrafficBytes || n.FusedSteps < o.FusedSteps {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-22s fusion     %8d -> %8d traffic B   (%d/%d steps fused)\n",
			status, m, o.TrafficBytes, n.TrafficBytes, n.FusedSteps, n.Steps)
	}
	for m := range newFus {
		if _, ok := oldFus[m]; !ok {
			fmt.Printf("new  %-22s fusion probe (no committed baseline, not gated)\n", m)
		}
	}
	failed = gateKernels(oldFile.byKernel(), newFile.byKernel(), kernelTol) || failed
	failed = gateDrift(oldFile.byDrift(), newFile.byDrift(), driftTol) || failed
	failed = gatePhases(oldFile.byPhase(), newFile.byPhase(), phaseTol) || failed
	if failed {
		fmt.Printf("\nperf gate FAILED (tolerance %.0f%%) — if intentional, regenerate BENCH_serve.json\n", tol*100)
		return true
	}
	fmt.Printf("\nperf gate passed (tolerance %.0f%%)\n", tol*100)
	return false
}

// gateKernels diffs the per-kernel GFLOP/s tables: a kernel in the
// committed record must still appear in the fresh one (a vanished kernel
// means its accounting hook was lost, or a whole code path stopped
// executing) and its rate must not fall by more than tol.
func gateKernels(oldK, newK map[string]kernelRecord, tol float64) bool {
	failed := false
	keys := make([]string, 0, len(oldK))
	for k := range oldK {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := oldK[k]
		n, ok := newK[k]
		if !ok {
			fmt.Printf("FAIL kernel %-15s missing from the fresh record (accounting hook lost?)\n", k)
			failed = true
			continue
		}
		drop := rel(o.GFlopsPerSec, n.GFlopsPerSec)
		status := "ok  "
		if drop > tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s kernel %-15s %8.2f -> %8.2f GFLOP/s (%+.1f%%)\n",
			status, k, o.GFlopsPerSec, n.GFlopsPerSec, -100*drop)
	}
	for k := range newK {
		if _, ok := oldK[k]; !ok {
			fmt.Printf("new  kernel %-15s (no committed baseline, not gated)\n", k)
		}
	}
	return failed
}

// gateDrift compares each step's cost-model drift ratio between records.
// The ratio's level is meaningless across machines (host wall-clock over
// modelled IPU time), but on the same runner its movement is the signal:
// a step whose ratio wanders further from where it was means either the
// implementation or the cost model changed speed without the other. The
// comparison is symmetric in log space — moving from 10x to 25x is as bad
// as from 10x to 4x.
func gateDrift(oldD, newD map[string]driftRecord, driftTol float64) bool {
	failed := false
	keys := make([]string, 0, len(oldD))
	for k := range oldD {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := oldD[k]
		n, ok := newD[k]
		if !ok || o.Ratio <= 0 || n.Ratio <= 0 {
			// Plan steps legitimately appear and vanish as compilation
			// evolves; only matched, populated rows are comparable.
			continue
		}
		move := math.Abs(math.Log(n.Ratio / o.Ratio))
		status := "ok  "
		if move > driftTol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s drift  %-38s ratio %9.2f -> %9.2f (%.2f in log space)\n",
			status, k, o.Ratio, n.Ratio, move)
	}
	return failed
}

// gatePhases compares each model's BSP phase block between records:
// bubble fraction and exchange share may not grow by more than phaseTol
// in absolute share points. Only growth is gated — a shrinking bubble or
// cheaper exchange is the goal, not a regression — and only matched rows
// are compared, so records predating the flight recorder (no phases
// block) gate nothing.
func gatePhases(oldP, newP map[string]phaseRecord, phaseTol float64) bool {
	failed := false
	keys := make([]string, 0, len(oldP))
	for k := range oldP {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := oldP[k]
		n, ok := newP[k]
		if !ok {
			fmt.Printf("FAIL %-22s phases block missing from the fresh record\n", k)
			failed = true
			continue
		}
		check := func(name string, oldV, newV float64) {
			status := "ok  "
			if newV > oldV+phaseTol {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-22s %-15s %8.3f -> %8.3f (%+.3f)\n",
				status, k, name, oldV, newV, newV-oldV)
		}
		check("bubble fraction", o.BubbleFraction, n.BubbleFraction)
		check("exchange share", o.ExchangeShare, n.ExchangeShare)
	}
	for k := range newP {
		if _, ok := oldP[k]; !ok {
			fmt.Printf("new  %-22s phases block (no committed baseline, not gated)\n", k)
		}
	}
	return failed
}

// rel returns how far below base the candidate fell as a fraction of
// base (negate for growth); non-positive baselines gate nothing.
func rel(base, candidate float64) float64 {
	if base <= 0 {
		return 0
	}
	return (base - candidate) / base
}
