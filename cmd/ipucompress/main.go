// Command ipucompress takes a trained dense SHL model and compresses it
// post hoc with internal/factorize, reporting the per-layer error,
// parameter count and modelled IPU memory before vs. after — the
// compress-then-serve workflow the paper's trained-from-scratch butterfly
// layers do not cover.
//
// Usage:
//
//	ipucompress                          # train a 256-wide dense SHL, compress at eps 0.25/0.5/0.75
//	ipucompress -n 1024 -train 4         # the paper's layer width
//	ipucompress -eps 0.02 -methods lowrank
//	ipucompress -train 0 -finetune 0     # skip training (random dense weights)
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/factorize"
	"repro/internal/fft"
	"repro/internal/ipu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func parseEps(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad tolerance %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseKinds(s string) ([]factorize.Kind, error) {
	if s == "" || s == "all" {
		return nil, nil
	}
	var out []factorize.Kind
	for _, tok := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "butterfly":
			out = append(out, factorize.KindButterfly)
		case "lowrank", "low-rank":
			out = append(out, factorize.KindLowRank)
		default:
			return nil, fmt.Errorf("unknown method %q (want butterfly, lowrank or all)", tok)
		}
	}
	return out, nil
}

// trainDense builds and optionally trains the dense SHL the compression
// acts on. Training needs n to be a perfect square (the synthetic dataset
// generates side×side images); otherwise the model stays at its random
// initialization.
func trainDense(n, classes, epochs int, seed int64) (*nn.Sequential, *dataset.Split) {
	rng := rand.New(rand.NewSource(seed))
	model := nn.BuildSHL(nn.Baseline, n, classes, rng)
	side := int(math.Round(math.Sqrt(float64(n))))
	if epochs <= 0 || side*side != n {
		if epochs > 0 {
			fmt.Printf("n=%d is not a perfect square; skipping training\n\n", n)
		}
		return model, nil
	}
	cfg := dataset.Config{
		Name: "synthetic", Classes: classes, Side: side,
		Train: 200 * classes, Test: 50 * classes, ValFraction: 0.15,
		AtomsPerClass: 6, BlobsPerClass: 3,
		NoiseStd: 0.4, GainStd: 0.4, Seed: seed,
	}
	ds := dataset.Generate(cfg)
	tc := nn.PaperTrainConfig(epochs)
	tc.Seed = seed
	res := nn.Train(model, ds, tc)
	fmt.Printf("trained dense SHL: %d epochs, test accuracy %.2f%%\n\n",
		epochs, res.TestAccuracy*100)
	return model, ds
}

// layerWorkload maps a compression decision for the n-wide layer to the
// IPU workload that prices it (same mapping the serving registry uses).
func layerWorkload(cfg ipu.Config, kind factorize.Kind, n, rank, batch int) *ipu.Workload {
	switch kind {
	case factorize.KindButterfly:
		return ipu.BuildButterflyMM(cfg, n, batch)
	case factorize.KindLowRank:
		return ipu.BuildLowRank(cfg, n, rank, batch)
	default:
		return ipu.BuildLinear(cfg, n, batch)
	}
}

func deviceBytes(w *ipu.Workload) (device, peakTile int, err error) {
	c, err := ipu.Compile(w.Graph)
	if err != nil {
		return 0, 0, err
	}
	return c.Device.Total(), c.PeakBytes, nil
}

func kb(b int) string { return fmt.Sprintf("%.1f", float64(b)/1024) }

func main() {
	var (
		n        = flag.Int("n", 256, "SHL layer width (power of two; 1024 is the paper's)")
		classes  = flag.Int("classes", 10, "output classes")
		train    = flag.Int("train", 4, "training epochs before compressing (0 = random weights)")
		finetune = flag.Int("finetune", 2, "fine-tuning epochs after compressing (0 = none)")
		epsList  = flag.String("eps", "0.25,0.5,0.75", "comma-separated relative Frobenius error targets")
		methods  = flag.String("methods", "all", "candidate families: butterfly, lowrank or all")
		seed     = flag.Int64("seed", 42, "seed for weights, dataset and sketching")
		batch    = flag.Int("batch", 8, "batch size for the modelled IPU memory report")
		device   = flag.String("device", "gc200", "device model: gc200 or gc2")
	)
	flag.Parse()

	if *n < 2 || !fft.IsPowerOfTwo(*n) {
		fmt.Fprintf(os.Stderr, "n=%d must be a power of two >= 2\n", *n)
		os.Exit(1)
	}
	eps, err := parseEps(*epsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	kinds, err := parseKinds(*methods)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var icfg ipu.Config
	switch *device {
	case "gc200":
		icfg = ipu.GC200()
	case "gc2":
		icfg = ipu.GC2()
	default:
		fmt.Fprintf(os.Stderr, "unknown device %q (want gc200 or gc2)\n", *device)
		os.Exit(1)
	}

	model, ds := trainDense(*n, *classes, *train, *seed)
	denseDev, densePeak, err := deviceBytes(ipu.BuildLinear(icfg, *n, *batch))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dense layer does not fit the device model: %v\n", err)
		os.Exit(1)
	}

	// Probe batch for end-to-end prediction error.
	rng := rand.New(rand.NewSource(*seed + 1))
	var probe *tensor.Matrix
	if ds != nil {
		probe = ds.XTest
	} else {
		probe = tensor.New(64, *n)
		probe.FillRandom(rng, 1)
	}
	denseOut := model.Infer(probe)

	failed := false
	for _, e := range eps {
		compressed, reports, err := model.Compress(nn.CompressOptions{
			Tolerance: e, Methods: kinds, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "eps=%g: %v\n", e, err)
			failed = true
			continue
		}
		fmt.Printf("== eps %g ==\n", e)
		fmt.Printf("%-18s %-10s %5s %10s %12s %12s %10s\n",
			"layer", "kind", "rank", "rel err", "params", "params'", "saving")
		for _, r := range reports {
			rank := "-"
			if r.Rank > 0 {
				rank = fmt.Sprint(r.Rank)
			}
			fmt.Printf("%-18s %-10s %5s %10.4f %12d %12d %9.1f%%\n",
				r.Layer, r.Kind, rank, r.RelError, r.ParamsBefore, r.ParamsAfter,
				100*(1-float64(r.ParamsAfter)/float64(r.ParamsBefore)))
		}

		// Modelled IPU memory of the N×N layer, before vs. after.
		first := reports[0]
		w := layerWorkload(icfg, first.Kind, *n, first.Rank, *batch)
		dev, peak, err := deviceBytes(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eps=%g: compiling compressed layer: %v\n", e, err)
			failed = true
			continue
		}
		fmt.Printf("model size: %d -> %d bytes (%.1f%% saved)\n",
			model.SizeBytes(), compressed.SizeBytes(),
			100*(1-float64(compressed.SizeBytes())/float64(model.SizeBytes())))
		fmt.Printf("modelled IPU memory (N=%d layer, batch %d): device %s -> %s KiB, peak tile %s -> %s KiB\n",
			*n, *batch, kb(denseDev), kb(dev), kb(densePeak), kb(peak))

		outErr := tensor.Sub(denseOut, compressed.Infer(probe)).FrobeniusNorm() /
			denseOut.FrobeniusNorm()
		fmt.Printf("end-to-end prediction error on %d probe samples: %.4f\n", probe.Rows, outErr)
		if ds != nil {
			acc := nn.Evaluate(compressed, ds.XTest, ds.YTest)
			fmt.Printf("test accuracy after compression: %.2f%%\n", acc*100)
			if *finetune > 0 {
				// Every compressed operator is differentiable, so a short
				// fine-tune recovers most of the factorization loss.
				tc := nn.PaperTrainConfig(*finetune)
				tc.Seed = *seed + 2
				ft := nn.Train(compressed, ds, tc)
				fmt.Printf("test accuracy after %d fine-tune epochs: %.2f%%\n",
					*finetune, ft.TestAccuracy*100)
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
